"""E12 — recovery time and goodput under an injected mid-flush worker kill.

The self-healing contract says worker death is *masked*: the pool respawns
the dead child in place and replays its batches onto the pool within the
same flush, byte-identically to a fault-free run.  This experiment measures
what that masking costs.  The same trace runs twice through a two-worker
process pool:

* **fault-free**: no injected faults — the baseline wall-clock;
* **faulted**: worker 0 is killed (``os._exit``) after its first batch of
  the main flush, mid-trace, so the pool must detect the EOF, respawn the
  child, and replay the lost batches.

Headline numbers recorded in ``BENCH_runtime.json`` under ``faults``:

* ``goodput_ratio`` — faulted goodput (ok responses/s) over fault-free
  goodput.  CI guards ``>= 0.7``: recovery may cost real time (a process
  respawn + recompiles on the replayed batches) but must never halve
  throughput on this workload.
* ``recovery_overhead_s`` — extra wall-clock the faulted run paid, the
  end-to-end recovery time for one worker death.
* ``byte_identical`` — the masked run produced exactly the fault-free
  responses (asserted before anything is timed or recorded).

The pool uses the ``fork`` start method: respawn cost is then dominated by
the lost cache state, not by a fresh interpreter re-importing the world —
matching how a production supervisor would keep respawn cheap.
"""

import time

import pytest
from conftest import record_bench, run_once

from repro.runtime import TraceConfig, WorkerPool, synthetic_trace
from repro.runtime.faults import FaultPlan

TRACE = TraceConfig(
    size=120,
    apps=["hash-table", "search", "murmur3"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=2,
    seed=21,
)

#: The wire-identity fields (cache-hit flags excluded by design — see
#: tests/runtime/test_pool.py).
PAYLOAD_FIELDS = ("request_id", "app", "backend", "ok", "error", "outputs",
                  "correct", "modeled_gbs", "modeled_runtime_s", "batch_id")

KILL_PLAN = FaultPlan.from_spec(
    [{"kind": "kill", "worker": 0, "after_batches": 1}]
)


def _run(fault_plan):
    """One timed trace replay; returns (payloads, stats) for the run."""
    pool = WorkerPool(
        workers=2,
        mode="process",
        mp_context="fork",
        fault_plan=fault_plan,
    )
    with pool:
        started = time.perf_counter()
        report = pool.process(synthetic_trace(TRACE))
        elapsed = time.perf_counter() - started
    ok = sum(1 for r in report.responses if r.error is None)
    payloads = [tuple(getattr(r, f) for f in PAYLOAD_FIELDS)
                for r in report.responses]
    return payloads, {
        "elapsed_s": elapsed,
        "ok": ok,
        "goodput_rps": ok / max(elapsed, 1e-9),
        "worker_restarts": report.worker_restarts,
        "replayed_batches": report.replayed_batches,
    }


def _experiment():
    clean_payloads, clean = _run(None)
    faulted_payloads, faulted = _run(KILL_PLAN)
    # Masking must be perfect before its cost is worth measuring.
    assert faulted_payloads == clean_payloads, "recovery was not byte-identical"
    assert faulted["worker_restarts"] >= 1, "the injected kill never fired"
    assert faulted["replayed_batches"] >= 1, "nothing was replayed"
    assert faulted["ok"] == TRACE.size
    return {
        "trace_requests": TRACE.size,
        "workers": 2,
        "mode": "process/fork",
        "fault": "kill worker 0 after batch 1 (mid-flush)",
        "byte_identical": True,
        "fault_free": {
            "elapsed_s": round(clean["elapsed_s"], 4),
            "goodput_rps": round(clean["goodput_rps"], 1),
        },
        "faulted": {
            "elapsed_s": round(faulted["elapsed_s"], 4),
            "goodput_rps": round(faulted["goodput_rps"], 1),
            "worker_restarts": faulted["worker_restarts"],
            "replayed_batches": faulted["replayed_batches"],
        },
        "recovery_overhead_s": round(
            max(0.0, faulted["elapsed_s"] - clean["elapsed_s"]), 4
        ),
        "goodput_ratio": round(
            faulted["goodput_rps"] / max(clean["goodput_rps"], 1e-9), 4
        ),
    }


@pytest.mark.benchmark(group="runtime-faults")
def test_goodput_under_injected_worker_kill(benchmark):
    """Recovery must stay cheap: goodput under faults >= half of fault-free."""
    results = run_once(benchmark, _experiment)
    record_bench("faults", results)
    print(
        f"\nfault recovery: goodput {results['faulted']['goodput_rps']} rps "
        f"faulted vs {results['fault_free']['goodput_rps']} rps clean "
        f"(ratio {results['goodput_ratio']}), overhead "
        f"{results['recovery_overhead_s']}s, "
        f"{results['faulted']['worker_restarts']} restart(s), "
        f"{results['faulted']['replayed_batches']} replayed batch(es)"
    )
    # Soft in-test floor; CI guards the committed BENCH number at 0.7.
    assert results["goodput_ratio"] >= 0.5
