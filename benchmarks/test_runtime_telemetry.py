"""E12 — telemetry overhead: the metrics plane must be near-free.

The same warm 200-request trace is replayed through two identically
configured inline pools behind a :class:`PoolService` front door — one
with every registry disabled (``telemetry=False`` +
``MetricsRegistry(enabled=False)``, the null-metric baseline) and one
fully instrumented.  Responses are asserted byte-identical first
(telemetry must never change what is served), then the instrumented run
must sustain at least 95% of the baseline requests/sec.  CI runs this
guard on every PR, so a future hot-path metric that regresses serving
throughput fails loudly instead of rotting quietly.
"""

import gc
import json
import time

from conftest import record_bench, run_once

from repro.eval import format_rows
from repro.runtime import MetricsRegistry, TraceConfig, WorkerPool, synthetic_trace
from repro.runtime.gateway.admission import PoolService

TRACE = TraceConfig(
    size=200,
    apps=["hash-table", "search"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=2,
    seed=23,
)

#: CI guard: instrumented warm throughput must stay within 5% of baseline.
MIN_RATIO = 0.95


def _replay(service, payloads):
    """One warm replay through the front door; returns (elapsed_s, results)."""
    started = time.perf_counter()
    results = service.serve_payloads(payloads).results
    elapsed = time.perf_counter() - started
    assert len(results) == len(payloads)
    assert all(r.get("ok") for r in results)
    return elapsed, results


def _measure(baseline, service, payloads, attempts=7):
    """Interleaved min-of-``attempts`` timing for both configurations.

    Alternating baseline/telemetry replays inside one GC-paused window
    controls for machine drift, and min-time per arm filters scheduler
    stalls — the two biggest noise sources on a shared CI runner.  Also
    returns each arm's *first* replay results (request/batch ids are
    monotonic per serve call, so only same-index replays from two pools
    are comparable byte-for-byte).
    """
    _replay(baseline, payloads)  # fill program + result tiers
    _replay(service, payloads)
    baseline_times, telemetry_times = [], []
    baseline_results = telemetry_results = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(attempts):
            elapsed, results = _replay(baseline, payloads)
            baseline_times.append(elapsed)
            baseline_results = baseline_results or results
            elapsed, results = _replay(service, payloads)
            telemetry_times.append(elapsed)
            telemetry_results = telemetry_results or results
    finally:
        gc.enable()
    size = len(payloads)
    return (
        size / min(baseline_times),
        size / min(telemetry_times),
        baseline_results,
        telemetry_results,
    )


def test_telemetry_overhead_warm_path(benchmark):
    payloads = [request.to_dict() for request in synthetic_trace(TRACE)]

    with WorkerPool(workers=2, mode="inline", telemetry=False) as pool_off:
        baseline = PoolService(pool_off, metrics=MetricsRegistry(enabled=False))
        with WorkerPool(workers=2, mode="inline") as pool_on:
            service = PoolService(pool_on)
            baseline_rps, telemetry_rps, baseline_results, telemetry_results = (
                run_once(benchmark, _measure, baseline, service, payloads)
            )
            p95_s = service.metrics.histogram(
                "frontdoor_request_seconds",
                "Front-door serve-call wall clock, by endpoint.",
                ("endpoint",),
            ).quantile(0.95, endpoint="ndjson")
            scrape = service.metrics_text()

    # Byte-transparency first: a cheap metrics plane that changes the
    # responses is not an observability layer, it is a bug.
    assert json.dumps(telemetry_results, sort_keys=True) == json.dumps(
        baseline_results, sort_keys=True
    )
    # The instrumented run really did measure itself.
    assert "engine_requests_total" in scrape
    assert p95_s > 0.0

    ratio = telemetry_rps / baseline_rps
    rows = [
        {"config": "telemetry off", "requests_per_s": round(baseline_rps, 1)},
        {"config": "telemetry on", "requests_per_s": round(telemetry_rps, 1)},
        {"config": "ratio", "requests_per_s": f"{ratio:.3f}x"},
    ]
    print("\n" + format_rows(rows))
    record_bench("telemetry", {
        "trace_requests": TRACE.size,
        "baseline_requests_per_s": round(baseline_rps, 1),
        "telemetry_requests_per_s": round(telemetry_rps, 1),
        "ratio": round(ratio, 4),
        "frontdoor_p95_s": round(p95_s, 6),
        "byte_identical": True,
        "min_ratio": MIN_RATIO,
    })
    assert ratio >= MIN_RATIO
