"""E5 — Figure 13: hierarchy removal performance/area scaling (murmur3)."""

from conftest import run_once

from repro.eval import fig13_hierarchy_removal, format_rows


def test_fig13_hierarchy_removal(benchmark):
    rows = run_once(benchmark, fig13_hierarchy_removal)
    assert len(rows) == 6
    # Hierarchy removal moves the scaling curve up and to the left: at the
    # largest area point it outperforms both hierarchical variants, and the
    # shared-init variant saturates (sub-linear scaling).
    last = rows[-1]
    assert last["perf_removed"] > last["perf_shared"]
    assert last["perf_removed"] >= last["perf_duplicated"]
    assert last["norm_area_duplicated"] > last["norm_area_removed"]
    assert rows[-1]["perf_shared"] / rows[0]["perf_shared"] < 6  # saturation
    print("\n" + format_rows(rows))
