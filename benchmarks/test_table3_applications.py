"""E1 — Table III: applications, sizes, and key features."""

from conftest import run_once

from repro.eval import format_rows, table3_applications


def test_table3_applications(benchmark):
    rows = run_once(benchmark, table3_applications)
    assert len(rows) == 8
    print("\n" + format_rows(rows))
