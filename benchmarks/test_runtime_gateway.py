"""E11 — goodput under 2x overload, with vs. without admission control.

The gateway's claim is that shedding load beyond the measured token budget
*raises* useful throughput: an accepted request completes promptly (and a
shed one fails fast with a retry hint) instead of every request crawling
through an unbounded queue.  This experiment offers the same open-loop 2x
overload trace to one shared :class:`PoolService` twice:

* **admission on**: an :class:`AdmissionController` whose budget is derived
  from the measured drain rate (``drain_rps x headroom`` seconds of work in
  flight) sheds the excess with 429 envelopes;
* **admission off**: the pre-gateway behaviour — everything is accepted and
  queues behind the pool lock.

*Goodput* counts only requests that completed successfully within the SLO
(250 ms from their scheduled send), divided by the full wall span including
the drain tail — exactly what a latency-bound client experiences.  Under
saturation the unbounded queue pushes nearly every later request past the
SLO, so admission control must win on goodput *and* keep the p99 pool-lock
queue wait bounded.
"""

import gc
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import record_bench, run_once

from repro.eval import format_rows
from repro.runtime import WorkerPool
from repro.runtime.gateway.admission import AdmissionController, PoolService

#: Artificial per-request service delay: makes the pool's drain rate small
#: and stable so "2x overload" is meaningful on any CI machine.
SERVICE_DELAY_S = 0.004
#: Requests per client call (one pool flush each).
BATCH = 4
#: Seconds of offered 2x overload.
DURATION_S = 2.0
#: A request is "good" if it completes successfully within this bound.
SLO_S = 0.25
#: Seconds of measured drain the admission budget may hold in flight.
HEADROOM_S = 0.1


def _payloads(index: int) -> list:
    return [
        {"app": "search", "n_threads": 2, "seed": (index + i) % 2}
        for i in range(BATCH)
    ]


def _measure_drain(service: PoolService) -> float:
    """Warm the pool and measure its drain rate (requests/second)."""
    served = 0
    started = time.perf_counter()
    for index in range(10):
        result = service.serve_payloads(_payloads(index))
        assert not result.shed
        assert all(r["ok"] for r in result.results)
        served += BATCH
    return served / (time.perf_counter() - started)


def _offer_overload(service: PoolService, offered_rps: float) -> dict:
    """Open-loop offered load at ``offered_rps`` for ``DURATION_S``."""
    interval = BATCH / offered_rps
    jobs = []

    def serve(scheduled: float, index: int):
        result = service.serve_payloads(_payloads(index))
        return scheduled, time.perf_counter(), result

    with ThreadPoolExecutor(max_workers=32) as executor:
        started = time.perf_counter()
        next_send = started
        index = 0
        while next_send < started + DURATION_S:
            now = time.perf_counter()
            if now < next_send:
                time.sleep(next_send - now)
            jobs.append(executor.submit(serve, next_send, index))
            index += 1
            next_send += interval
        outcomes = [job.result() for job in jobs]
    span = max(done for _, done, _ in outcomes) - started

    offered = len(outcomes) * BATCH
    accepted = [o for o in outcomes if not o[2].shed]
    shed = offered - len(accepted) * BATCH
    good = sum(
        BATCH
        for scheduled, done, result in accepted
        if done - scheduled <= SLO_S
        and all(r["ok"] for r in result.results)
    )
    latencies = sorted(done - scheduled for scheduled, done, _ in accepted)
    p99_latency = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
    return {
        "offered_requests": offered,
        "offered_rps": round(offered / DURATION_S, 1),
        "accepted_requests": len(accepted) * BATCH,
        "shed_requests": shed,
        "good_requests": good,
        "goodput_rps": round(good / span, 1),
        "span_s": round(span, 3),
        "p99_latency_s": round(p99_latency, 4),
        "p99_queue_wait_s": round(service.queue_wait_quantile(0.99), 4),
    }


def _run_arm(with_admission: bool) -> dict:
    admission = (
        AdmissionController(headroom=HEADROOM_S) if with_admission else None
    )
    pool = WorkerPool(
        workers=2,
        mode="inline",
        service_delays=[SERVICE_DELAY_S, SERVICE_DELAY_S],
    )
    gc.collect()
    gc.disable()
    try:
        with pool:
            service = PoolService(pool, admission)
            drain_rps = _measure_drain(service)
            stats = _offer_overload(service, offered_rps=2.0 * drain_rps)
            stats["drain_rps"] = round(drain_rps, 1)
            stats["admission"] = with_admission
            if admission is not None:
                stats["budget"] = admission.limit
            return stats
    finally:
        gc.enable()


def test_admission_control_wins_goodput_under_overload(benchmark):
    without = _run_arm(with_admission=False)
    with_adm = run_once(benchmark, _run_arm, with_admission=True)

    rows = [
        {
            "admission": "off" if row is without else "on",
            "offered_rps": row["offered_rps"],
            "goodput_rps": row["goodput_rps"],
            "shed": row["shed_requests"],
            "p99_wait_s": row["p99_queue_wait_s"],
            "p99_latency_s": row["p99_latency_s"],
        }
        for row in (without, with_adm)
    ]
    print("\n" + format_rows(rows))
    record_bench("gateway", {
        "service_delay_s": SERVICE_DELAY_S,
        "slo_s": SLO_S,
        "headroom_s": HEADROOM_S,
        "overload_factor": 2.0,
        "with_admission": with_adm,
        "without_admission": without,
        "goodput_gain": round(
            with_adm["goodput_rps"] / max(without["goodput_rps"], 0.1), 2
        ),
    })

    # Both arms were genuinely overloaded relative to the measured drain.
    assert without["offered_rps"] > 1.5 * without["drain_rps"]
    assert with_adm["offered_rps"] > 1.5 * with_adm["drain_rps"]
    # Admission sheds under overload; the unbounded arm accepts everything.
    assert with_adm["shed_requests"] > 0
    assert without["shed_requests"] == 0
    # Every admitted request completed successfully (nothing was dropped).
    assert with_adm["good_requests"] <= with_adm["accepted_requests"]
    # Headline: strictly higher goodput with admission control, and the
    # pool-lock queue wait stays bounded instead of growing with the queue.
    assert with_adm["goodput_rps"] > without["goodput_rps"]
    assert with_adm["p99_queue_wait_s"] < without["p99_queue_wait_s"]
    assert with_adm["p99_queue_wait_s"] <= 5 * HEADROOM_S
