"""Shared pytest-benchmark configuration for the experiment harness.

Every benchmark regenerates one of the paper's tables or figures.  The
underlying experiments compile and execute real applications, so each is run
once per benchmark invocation (``rounds=1``) rather than in a tight timing
loop.
"""

import sys
from pathlib import Path

# Allow running the benchmarks without installing the package first.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
