"""Shared pytest-benchmark configuration for the experiment harness.

Every benchmark regenerates one of the paper's tables or figures.  The
underlying experiments compile and execute real applications, so each is run
once per benchmark invocation (``rounds=1``) rather than in a tight timing
loop.

Serving-layer benchmarks additionally publish their headline numbers to
``BENCH_runtime.json`` at the repo root via :func:`record_bench`; CI uploads
that file as a per-PR artifact so the performance trajectory is tracked.
"""

import json
import sys
from pathlib import Path

# Allow running the benchmarks without installing the package first.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: One merged JSON document; each benchmark owns a top-level section.
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def record_bench(section, payload):
    """Merge one benchmark's headline numbers into ``BENCH_runtime.json``."""
    document = {}
    if BENCH_PATH.exists():
        try:
            document = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            document = {}
    document[section] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
