"""E9 — worker-pool dispatch: cache-affinity vs round-robin hit rate.

A 500-request mixed-app trace (seven Table III applications, two shapes
each) is served by a 4-worker pool whose per-worker program caches hold
only two entries — small enough that scattering programs across the pool
thrashes them.  Round-robin dispatch ignores residency and recompiles a
program on every worker that receives one of its batches; cache-affinity
routes each program's batches to the worker already holding it.  The
affinity policy must yield a strictly higher pool-wide program-cache hit
rate (and strictly fewer compiles); both numbers land in
``BENCH_runtime.json`` for the per-PR artifact.
"""

import time

from conftest import record_bench, run_once

from repro.eval import format_rows
from repro.runtime import TraceConfig, WorkerPool, synthetic_trace

TRACE = TraceConfig(
    size=500,
    apps=["hash-table", "search", "huff-enc", "murmur3", "strlen", "ip2int",
          "isipv4"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=2,
    n_threads=2,
    seed=42,
)
WORKERS = 4
CACHE_CAPACITY = 2


def _replay(policy: str):
    """Serve the trace under one dispatch policy; returns (report, rps)."""
    with WorkerPool(workers=WORKERS, mode="inline", policy=policy,
                    cache_capacity=CACHE_CAPACITY) as pool:
        requests = synthetic_trace(TRACE)
        started = time.perf_counter()
        report = pool.process(requests)
        elapsed = time.perf_counter() - started
    assert len(report.responses) == TRACE.size
    assert all(r.ok for r in report.responses)
    return report, TRACE.size / max(elapsed, 1e-9)


def test_pool_affinity_vs_round_robin(benchmark):
    rr_report, rr_rps = _replay("round-robin")
    affinity_report, affinity_rps = run_once(benchmark, _replay,
                                             "cache-affinity")

    rr_stats = rr_report.aggregate_program_stats()
    affinity_stats = affinity_report.aggregate_program_stats()
    assert affinity_stats.hit_rate > rr_stats.hit_rate
    assert affinity_stats.misses < rr_stats.misses

    rows = [
        {"policy": "round-robin", "hit_rate_%": round(100 * rr_stats.hit_rate, 1),
         "compiles": rr_stats.misses, "requests_per_s": round(rr_rps, 1)},
        {"policy": "cache-affinity",
         "hit_rate_%": round(100 * affinity_stats.hit_rate, 1),
         "compiles": affinity_stats.misses,
         "requests_per_s": round(affinity_rps, 1)},
    ]
    print("\n" + format_rows(rows))
    record_bench("worker_pool", {
        "trace_requests": TRACE.size,
        "apps": list(TRACE.apps),
        "workers": WORKERS,
        "cache_capacity_per_worker": CACHE_CAPACITY,
        "round_robin": {
            "hit_rate": round(rr_stats.hit_rate, 4),
            "compiles": rr_stats.misses,
            "requests_per_s": round(rr_rps, 1),
        },
        "cache_affinity": {
            "hit_rate": round(affinity_stats.hit_rate, 4),
            "compiles": affinity_stats.misses,
            "requests_per_s": round(affinity_rps, 1),
        },
    })
