"""E3 — Table V: Revet vs V100 vs CPU throughput and ideal-model speedups."""

from conftest import run_once

from repro.eval import format_rows, table5_performance, table5_summary


def test_table5_performance(benchmark):
    rows = run_once(benchmark, table5_performance)
    assert len(rows) == 8
    by_app = {r["app"]: r for r in rows}
    # Headline shape checks (see EXPERIMENTS.md for the full discussion):
    # Revet beats the GPU on the parsing workloads and on tree traversal, and
    # the GPU's tree traversal collapses to single-digit GB/s.
    assert by_app["isipv4"]["gpu_speedup"] > 1
    assert by_app["ip2int"]["gpu_speedup"] > 1
    assert by_app["kD-tree"]["gpu_speedup"] > 1
    assert by_app["kD-tree"]["gpu_gbs"] < 10
    # Every app beats the CPU or is within the same order of magnitude.
    assert all(r["cpu_speedup"] > 0.1 for r in rows)
    summary = table5_summary(rows)
    print("\n" + format_rows(rows))
    print(summary)


def test_table5_summary_area_adjustment(benchmark):
    rows = table5_performance(apps=["isipv4", "kD-tree"])
    summary = run_once(benchmark, table5_summary, rows)
    # The area-adjusted speedup must exceed the raw speedup by the 4.3x ratio.
    assert summary["area_adjusted_gpu_speedup"] > summary["gpu_speedup_geomean"] * 4
