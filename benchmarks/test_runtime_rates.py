"""E10 — measured service-rate dispatch on a skewed worker pool.

Real pools never have uniform per-node service rates.  This experiment
deliberately skews a two-worker pool (worker 1 sleeps 20 ms per request, a
~10x slowdown over the ~1 ms hash-table execution) and replays the same
trace twice:

* **unit scales**: the dispatcher assumes identical workers, so
  hoisted-buffer admission splits the batches evenly and the slow worker
  drags the flush;
* **measured rates**: each worker reports an EWMA of its flushed
  requests/second in its snapshot, the dispatcher converts the rates to the
  relative scales :class:`repro.runtime.scheduler.ShardScheduler` already
  accepts, and the slow worker demonstrably receives less work.

Two short warm-up flushes measure the rates first (a fresh pool has none;
the second flush folds into the EWMA so a one-off stall cannot corrupt the
estimate), then the main flush is compared on *completion time*: the
per-flush wall-clock of the busiest worker.  Measured-rate dispatch must
beat unit-scale dispatch.
"""

import gc

from conftest import record_bench, run_once

from repro.eval import format_rows
from repro.runtime import TraceConfig, WorkerPool, synthetic_trace

#: Per-worker artificial service delay: worker 1 is the deliberately slow one.
SERVICE_DELAYS = [0.0, 0.02]

TRACE = TraceConfig(
    size=60,
    apps=["hash-table"],
    backend_mix={"vrda": 1.0},
    distinct_shapes=60,  # every request distinct: no memoized shortcuts
    n_threads=1,
    seed=3,
)


def _run_skewed(rate_dispatch: bool) -> dict:
    """Warm up, flush the main trace, and measure the busiest worker."""
    pool = WorkerPool(
        workers=2,
        mode="inline",
        policy="hoisted-buffer",
        buffers_per_worker=1,
        max_batch_size=1,
        result_cache_capacity=0,
        rate_dispatch=rate_dispatch,
        service_delays=SERVICE_DELAYS,
    )
    # The whole experiment is wall-clock-sensitive (tens of ms per worker),
    # so pause the cyclic GC: a collection over the suite's live heap would
    # otherwise corrupt a rate measurement and erase the skew.
    gc.collect()
    gc.disable()
    try:
        with pool:
            for _ in range(2):  # measure the rates (EWMA over two flushes)
                pool.process(synthetic_trace(TRACE, size=10))
            busy_before = [s.busy_s for s in pool.last_snapshots]
            report = pool.process(synthetic_trace(TRACE))
            assert all(r.error is None for r in report.responses)
            snapshots = pool.last_snapshots
            completion_s = max(
                after.busy_s - before
                for after, before in zip(snapshots, busy_before)
            )
            return {
                "completion_s": completion_s,
                "requests": [s.requests for s in snapshots],
                "rates_rps": [round(s.service_rate_rps, 1)
                              for s in snapshots],
                "scales": pool.stats_row()["worker_scales"],
            }
    finally:
        gc.enable()


def test_measured_rate_dispatch_beats_unit_scales(benchmark):
    unit = _run_skewed(rate_dispatch=False)
    measured = run_once(benchmark, _run_skewed, rate_dispatch=True)

    rows = [
        {"dispatch": "unit scales",
         "completion_s": round(unit["completion_s"], 3),
         "slow_worker_requests": unit["requests"][1]},
        {"dispatch": "measured rates",
         "completion_s": round(measured["completion_s"], 3),
         "slow_worker_requests": measured["requests"][1]},
    ]
    print("\n" + format_rows(rows))
    record_bench("rate_dispatch", {
        "trace_requests": TRACE.size,
        "service_delays_s": SERVICE_DELAYS,
        "unit_completion_s": round(unit["completion_s"], 4),
        "measured_completion_s": round(measured["completion_s"], 4),
        "speedup": round(unit["completion_s"] / measured["completion_s"], 2),
        "unit_requests_per_worker": unit["requests"],
        "measured_requests_per_worker": measured["requests"],
        "measured_scales": measured["scales"],
    })

    # The slow worker measures a lower rate, gets a >1 relative scale, and
    # therefore receives strictly less work than under unit dispatch.
    assert measured["rates_rps"][1] < measured["rates_rps"][0]
    assert measured["scales"][1] > 1.0
    assert measured["requests"][1] < unit["requests"][1]
    # Headline: measured-rate dispatch finishes the flush faster (generous
    # margin — the skew is ~10x, the observed win ~4-5x).
    assert measured["completion_s"] < 0.8 * unit["completion_s"]
