"""E2 — Table IV: per-application vRDA resource usage."""

from conftest import run_once

from repro.core.machine import DEFAULT_MACHINE
from repro.eval import format_rows, table4_resources


def test_table4_resources(benchmark):
    rows = run_once(benchmark, table4_resources)
    assert len(rows) == 8
    for row in rows:
        # Every configuration must fit the Table II machine.
        assert row["total_cu"] <= DEFAULT_MACHINE.num_cus
        assert row["total_mu"] <= DEFAULT_MACHINE.num_mus
        assert row["total_ag"] <= DEFAULT_MACHINE.num_ags
        assert row["lanes"] >= DEFAULT_MACHINE.lanes
    print("\n" + format_rows(rows))
