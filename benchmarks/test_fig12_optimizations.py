"""E4 — Figure 12: resource increase when disabling optimization passes."""

from conftest import run_once

from repro.eval import fig12_optimization_impact, format_rows


def test_fig12_optimization_impact(benchmark):
    # A representative subset keeps the benchmark runtime manageable; pass
    # apps=None to sweep all eight applications.
    rows = run_once(benchmark, fig12_optimization_impact,
                    ["isipv4", "murmur3", "hash-table", "kD-tree"])
    assert rows
    for row in rows:
        # Disabling optimizations never *reduces* resource usage.
        assert row["no_if_conv_cu_x"] >= 1.0
        assert row["no_buffer_cu_x"] >= 1.0
        assert row["no_pack_cu_x"] >= 1.0
    print("\n" + format_rows(rows))
