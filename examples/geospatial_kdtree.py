#!/usr/bin/env python
"""Geospatial analytics scenario: k-d tree range counting plus the evaluation
pipeline (resource estimate, throughput model, and the Aurochs comparison).

This is the workload the paper uses to show why dataflow threads beat both
the GPU (no fork/recursion, so traversal becomes a kernel per level) and
Aurochs (no thread-local SRAM, no nested foreach).
"""

from repro.apps import REGISTRY
from repro.baselines.aurochs import AurochsModel
from repro.baselines.gpu import GPUModel
from repro.dataflow.resources import estimate_resources
from repro.sim.perf_model import VRDAPerformanceModel, WorkloadProfile


def main() -> None:
    spec = REGISTRY.get("kD-tree")
    threads = 12
    instance = spec.generate(threads, seed=7)
    program = spec.compile()
    program.run(instance.memory, profile=True, **instance.args)

    expected = spec.reference(instance)
    actual = instance.memory.segment_data("out")[: len(expected)]
    print("query results match brute force:", actual == expected)
    print("counts:", actual)

    resources = estimate_resources(program, app_name="kD-tree", max_outer=5)
    print("resources:", resources.as_row())

    profile = WorkloadProfile.from_run(
        instance.memory.stats, threads=threads,
        app_bytes_per_thread=spec.bytes_per_thread,
        iterations=spec.avg_iterations_per_thread)
    model = VRDAPerformanceModel()
    report = model.throughput("kD-tree", profile, resources)
    print("vRDA model   : %.1f GB/s" % report.throughput_gbs)
    print("V100 model   : %.1f GB/s" % GPUModel().throughput_gbs(spec))
    print("Aurochs gap  : %.1fx slower than Revet" % AurochsModel().speedup_of_revet())


if __name__ == "__main__":
    main()
