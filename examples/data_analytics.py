#!/usr/bin/env python
"""Data-analytics scenario: hashing, hash-table lookups, and Huffman coding.

Demonstrates the data-processing applications of Table III and prints the
per-application throughput model next to the GPU/CPU baseline models —
a miniature version of Table V.
"""

from repro.apps import REGISTRY
from repro.apps.base import check_app
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.eval.tables import table5_performance


def main() -> None:
    for name in ("murmur3", "hash-table", "huff-enc", "huff-dec"):
        spec = REGISTRY.get(name)
        ok = check_app(spec, n_threads=6, seed=3)
        print(f"{name:10s} correctness vs reference: {'OK' if ok else 'FAIL'}")

    print("\nmini Table V (models, GB/s):")
    rows = table5_performance(apps=["murmur3", "hash-table"])
    gpu, cpu = GPUModel(), CPUModel()
    for row in rows:
        print(f"  {row['app']:10s} revet={row['revet_gbs']:8.1f}  "
              f"gpu={row['gpu_gbs']:8.1f}  cpu={row['cpu_gbs']:6.1f}  "
              f"(paper revet: {row['paper_revet_gbs']})")


if __name__ == "__main__":
    main()
