#!/usr/bin/env python
"""Serving-engine tour: cached, batched, multi-backend request serving.

Builds a small mixed trace by hand (registered apps on several backends,
plus one raw-source request with pre-staged memory), serves it through the
:class:`repro.runtime.Engine`, and shards the modeled costs across four
simulated vRDA workers.  Run it twice mentally: every repeated request
after the first is served from the program and result caches.
"""

from repro.core.memory import MemorySystem
from repro.runtime import Engine, Request, ShardScheduler

SQUARE = """
DRAM<int> data;
DRAM<int> out;

void main(int n) {
  foreach (n) { int i =>
    int v = data[i];
    out[i] = v * v;
  };
}
"""


def main() -> None:
    engine = Engine()

    # Registered Table III apps, across functional and analytic backends.
    requests = [
        Request(app="hash-table", n_threads=2, seed=0),
        Request(app="hash-table", n_threads=2, seed=0),   # result-cache hit
        Request(app="search", n_threads=2, seed=1),
        Request(app="search", n_threads=2, seed=1, backend="cpu"),
        Request(app="search", n_threads=2, seed=1, backend="gpu"),
        Request(app="kD-tree", n_threads=2, seed=0, backend="aurochs"),
    ]

    # A raw-source request brings its own staged memory and arguments.
    memory = MemorySystem()
    memory.dram_alloc("data", data=[1, 2, 3, 4, 5])
    memory.dram_alloc("out", size=5)
    requests.append(Request(source=SQUARE, memory=memory, args={"n": 5}))

    responses = engine.process(requests)
    for response in responses:
        line = (f"#{response.request_id} {response.app or '<raw source>':12s} "
                f"on {response.backend:7s}")
        if response.error:
            print(f"{line} ERROR: {response.error}")
            continue
        tags = []
        if response.result_cache_hit:
            tags.append("result-cache")
        elif response.program_cache_hit:
            tags.append("program-cache")
        print(f"{line} modeled {response.modeled_gbs:8.1f} GB/s "
              f"({response.modeled_runtime_s * 1e6:7.1f} us)"
              + (f"  [{' '.join(tags)}]" if tags else ""))

    print("\nraw-source output:", memory.segment_data("out"))
    print("program cache    :", engine.program_cache_stats.as_dict())
    print("result cache     :", engine.result_cache_stats.as_dict())

    report = ShardScheduler(workers=4, policy="least-loaded")\
        .dispatch_responses(responses)
    print(f"sharded over {len(report.workers)} workers "
          f"({report.policy}): makespan {report.makespan_s * 1e6:.1f} us, "
          f"imbalance {report.imbalance():.2f}x")


if __name__ == "__main__":
    main()
