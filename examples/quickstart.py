#!/usr/bin/env python
"""Quickstart: compile a tiny Revet program and run it on the dataflow machine.

The program squares every element of a DRAM array using one thread per
element.  It shows the three steps every Revet user takes: stage data in a
:class:`MemorySystem`, compile source with :func:`compile_source`, and run the
compiled dataflow program.
"""

from repro.compiler import compile_source
from repro.core.memory import MemorySystem

SOURCE = """
DRAM<int> data;
DRAM<int> out;

void main(int n) {
  foreach (n) { int i =>
    int v = data[i];
    out[i] = v * v;
  };
}
"""


def main() -> None:
    values = list(range(1, 11))
    memory = MemorySystem()
    memory.dram_alloc("data", data=values)
    memory.dram_alloc("out", size=len(values))

    program = compile_source(SOURCE)
    executor = program.run(memory, n=len(values), profile=True)

    print("input :", values)
    print("output:", memory.segment_data("out"))
    print("dataflow nodes:", sum(1 for _ in program.graph.walk()))
    print("DRAM traffic  :", memory.stats.dram_total_bytes, "bytes")
    print("links profiled:", len(executor.profile.link_stats))


if __name__ == "__main__":
    main()
