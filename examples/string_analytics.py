#!/usr/bin/env python
"""String analytics scenario: strlen (Figure 7) and IPv4 validation.

Runs the paper's running example and the isipv4 application end to end on the
functional machine model, then prints the compiled graphs' structure and the
measured DRAM traffic — the same measurements the evaluation harness feeds to
the performance model.
"""

from repro.apps import REGISTRY
from repro.apps.base import run_app


def run(name: str, threads: int) -> None:
    spec = REGISTRY.get(name)
    instance = spec.generate(threads, seed=42)
    executor = run_app(spec, instance, profile=True)
    expected = spec.reference(instance)
    actual = instance.memory.segment_data(spec.output_segment)[: len(expected)]
    status = "OK" if actual == expected else "MISMATCH"
    print(f"== {name} ({threads} threads): {status}")
    print("   key features:", ", ".join(spec.key_features))
    print("   sample output:", actual[:8])
    print("   DRAM bytes   :", instance.memory.stats.dram_total_bytes)
    print("   loop firings :", sum(executor.profile.loop_iterations.values()))


def main() -> None:
    run("strlen", threads=16)
    run("isipv4", threads=12)
    run("ip2int", threads=12)


if __name__ == "__main__":
    main()
