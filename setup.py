"""Legacy-tooling shim: all metadata lives in pyproject.toml.

Lets ``pip install -e .`` fall back to ``setup.py develop`` on toolchains
too old for PEP 660 editable wheels (e.g. no ``wheel`` package available).
"""

from setuptools import setup

setup()
